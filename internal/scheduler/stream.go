package scheduler

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
	"dragonfly/internal/topology"
	"dragonfly/internal/workload"
)

// The streaming scheduler core: runs a GenTrace of 100k–1M jobs with
// retained memory bounded by the jobs concurrently in the system, not by
// trace length. Three things make that true:
//
//   - the trace itself is structure-of-arrays (~20 B/job, see generate.go);
//   - jobs are admitted into a workload.NewDynamicStream lazily, right
//     before placement, and retired (state reclaimed) right after release —
//     and a streaming workload reports NumJobs() == 0, so the network never
//     builds its O(jobs × routers) per-job attribution arrays;
//   - per-job outcomes fold into fixed-memory accumulators at departure
//     (stats.Sketch quantiles + scalar sums) instead of a per-job slice.
//
// The controller implements sim.Finisher, so the run ends at the last
// departure rather than a fixed measure window: the horizon in the Config
// is a cap, not the run length.

// streamJob is one running job's state — the only per-job state retained
// while a job is in the system, dropped at departure.
type streamJob struct {
	idx   int32 // trace index
	wlJob int32 // workload job index, for Release/Retire
	need  int32 // routers occupied
	start int64
	end   int64 // start + duration
	nodes []int // activated node ids
}

// genController is the sim.Controller + sim.Finisher that schedules a
// generated trace under a discipline. Its decisions go through the same
// planStarts core as the replay controller, so the two agree start-cycle
// for start-cycle on any trace both can run (enforced by
// TestStreamMatchesDetailed).
type genController struct {
	wl      *workload.Workload
	gt      *GenTrace
	disc    string
	load    float64
	perR    int         // nodes per router (topology P), for router demand
	nextArr int         // next trace index not yet arrived
	queue   []int32     // arrived, waiting; trace indices in arrival order
	running []streamJob // placed, not departed; in placement order

	// Fixed-memory outcome accumulators (see StreamResult).
	wait, run, slow          stats.Sketch
	waitSum, runSum, slowSum float64
	busy                     int64 // completed jobs' node-cycles
	started, completed       int
	lastDeparture            int64
	peakRunning, peakQueue   int

	// planStarts scratch, reused across events.
	qScratch []qJob
	rScratch []rJob

	// Test hooks: called at placement and departure when non-nil.
	onPlace    func(idx int, now int64)
	onComplete func(idx int, now int64)
}

// streamTestHook, when set by an in-package test, sees each run's
// controller before the network is built — the seam the stream-vs-detailed
// equivalence and memory-flatness tests install their probes through.
var streamTestHook func(*genController)

// NextEvent implements sim.Controller: the next arrival or the earliest
// running job's departure. Every generated duration is a cycle budget, so
// there is never a per-cycle polling fallback.
func (c *genController) NextEvent(now int64) int64 {
	next := int64(-1)
	add := func(t int64) {
		if t <= now {
			t = now + 1
		}
		if next < 0 || t < next {
			next = t
		}
	}
	if c.nextArr < c.gt.Len() {
		add(c.gt.Arrival[c.nextArr])
	}
	for i := range c.running {
		add(c.running[i].end)
	}
	return next
}

// Finished implements sim.Finisher: the trace is done when every job has
// arrived, started and departed.
func (c *genController) Finished(now int64) bool {
	return c.nextArr >= c.gt.Len() && len(c.queue) == 0 && len(c.running) == 0
}

// Apply implements sim.Controller: departures (fold outcome, release,
// retire), then arrivals, then placement via planStarts — the same event
// order as the replay controller, so a same-cycle arrival can recycle a
// freed allocation.
func (c *genController) Apply(rc *sim.Reconfig, now int64) {
	for i := 0; i < len(c.running); {
		if now < c.running[i].end {
			i++
			continue
		}
		c.depart(rc, i, now)
		c.running = append(c.running[:i], c.running[i+1:]...)
	}
	for c.nextArr < c.gt.Len() && c.gt.Arrival[c.nextArr] <= now {
		c.queue = append(c.queue, int32(c.nextArr))
		c.nextArr++
	}
	if len(c.queue) > c.peakQueue {
		c.peakQueue = len(c.queue)
	}
	if len(c.queue) == 0 {
		return
	}
	c.qScratch = c.qScratch[:0]
	for _, idx := range c.queue {
		c.qScratch = append(c.qScratch, qJob{need: c.needOf(int(idx)), dur: c.gt.Duration[idx]})
	}
	c.rScratch = c.rScratch[:0]
	for i := range c.running {
		c.rScratch = append(c.rScratch, rJob{need: int(c.running[i].need), end: c.running[i].end})
	}
	picks := planStarts(c.disc, now, c.wl.FreeRouters(), c.qScratch, c.rScratch)
	if len(picks) == 0 {
		return
	}
	for _, k := range picks {
		c.place(rc, int(c.queue[k]), now)
	}
	kept := c.queue[:0]
	pi := 0
	for i, idx := range c.queue {
		if pi < len(picks) && picks[pi] == i {
			pi++
			continue
		}
		kept = append(kept, idx)
	}
	c.queue = kept
	if len(c.running) > c.peakRunning {
		c.peakRunning = len(c.running)
	}
}

// needOf returns the router demand of trace job idx.
func (c *genController) needOf(idx int) int {
	return (int(c.gt.Nodes[idx]) + c.perR - 1) / c.perR
}

// place admits, allocates and activates trace job idx at cycle now.
func (c *genController) place(rc *sim.Reconfig, idx int, now int64) {
	spec := c.gt.jobSpec(idx)
	spec.Name = "j" // anonymous: names are not identity in streaming mode
	j, err := c.wl.Admit(spec)
	if err != nil {
		// runGenerated pre-validated every (pattern, size) pair.
		panic(fmt.Sprintf("scheduler: admitting pre-validated job: %v", err))
	}
	if err := c.wl.Place(j); err != nil {
		panic(fmt.Sprintf("scheduler: placing job that planStarts fit: %v", err))
	}
	nodes := c.wl.JobNodeIDs(j)
	for _, n := range nodes {
		rc.SetNodeActive(n, c.load)
	}
	c.running = append(c.running, streamJob{
		idx:   int32(idx),
		wlJob: int32(j),
		need:  int32(c.wl.RoutersFor(j)),
		start: now,
		end:   now + c.gt.Duration[idx],
		nodes: nodes,
	})
	c.started++
	wait := float64(now - c.gt.Arrival[idx])
	c.wait.Observe(wait)
	c.waitSum += wait
	if c.onPlace != nil {
		c.onPlace(idx, now)
	}
}

// depart folds running job i's outcome into the accumulators, silences its
// nodes, and releases and retires its workload state.
func (c *genController) depart(rc *sim.Reconfig, i int, now int64) {
	sj := &c.running[i]
	run := float64(sj.end - sj.start)
	c.run.Observe(run)
	c.runSum += run
	wait := float64(sj.start - c.gt.Arrival[sj.idx])
	sd := (wait + run) / run
	c.slow.Observe(sd)
	c.slowSum += sd
	c.busy += int64(c.gt.Nodes[sj.idx]) * (sj.end - sj.start)
	c.completed++
	if now > c.lastDeparture {
		c.lastDeparture = now
	}
	for _, n := range sj.nodes {
		rc.SetNodeSilent(n)
	}
	c.wl.Release(int(sj.wlJob))
	c.wl.Retire(int(sj.wlJob))
	if c.onComplete != nil {
		c.onComplete(int(sj.idx), now)
	}
}

// StreamResult is the bounded-memory outcome of a generated-trace run: the
// usual network measurement plus trace-level aggregates — no per-job slice.
type StreamResult struct {
	Sim        *sim.Result `json:"sim"`
	Discipline string      `json:"discipline"`
	// Jobs, Started, Completed count the trace population and how far it
	// got within the horizon (Started includes Completed).
	Jobs      int `json:"jobs"`
	Started   int `json:"started"`
	Completed int `json:"completed"`
	// LastDeparture is the cycle of the final departure (-1: none);
	// RanCycles is how long the run actually was — last departure + 1 when
	// the trace drained, the configured horizon when it was cut off.
	LastDeparture int64 `json:"last_departure"`
	RanCycles     int64 `json:"ran_cycles"`
	// WaitMean is over started jobs; RunMean and SlowdownMean over
	// completed ones (0 when none).
	WaitMean     float64 `json:"wait_mean"`
	RunMean      float64 `json:"run_mean"`
	SlowdownMean float64 `json:"slowdown_mean"`
	// Wait, RunTime and Slowdown are the streaming quantile sketches the
	// per-job records were folded into (wait observed at start, the others
	// at completion). Excluded from JSON — serialize with
	// stats.Sketch.AppendBinary where persistence is needed.
	Wait     stats.Sketch `json:"-"`
	RunTime  stats.Sketch `json:"-"`
	Slowdown stats.Sketch `json:"-"`
	// Utilization is busy node-cycles (censored jobs' partial runs
	// included) over machine node-cycles for the cycles actually run.
	Utilization float64 `json:"utilization"`
	// PeakRunning and PeakQueue bound the scheduler's retained state.
	PeakRunning int `json:"peak_running"`
	PeakQueue   int `json:"peak_queue"`
	// RetainedBytes is the live heap at the last departure, when the whole
	// run — trace, controller, workload, network, accumulators — is still
	// reachable. Only measured when StreamOptions.MeasureRetained is set;
	// machine-dependent, so never part of a deterministic summary.
	RetainedBytes uint64 `json:"retained_bytes,omitempty"`
}

// StreamOptions tunes a generated-trace run.
type StreamOptions struct {
	// MeasureRetained fills StreamResult.RetainedBytes, at the cost of a
	// garbage collection at the last departure.
	MeasureRetained bool
}

// RunGenerated schedules a generated trace under the discipline on one
// simulation. The run ends at the last departure (the controller is a
// sim.Finisher); cfg's warm-up + measure cycles only cap it. Deterministic
// in (gt, disc, cfg.Seed) and bit-identical for any cfg.Workers.
func RunGenerated(cfg sim.Config, gt *GenTrace, disc string) (*StreamResult, error) {
	return RunGeneratedOpts(cfg, gt, disc, StreamOptions{})
}

// RunGeneratedOpts is RunGenerated with explicit options.
func RunGeneratedOpts(cfg sim.Config, gt *GenTrace, disc string, opts StreamOptions) (*StreamResult, error) {
	return runGenerated(cfg, gt, disc, opts, sim.RunNetworkWithController)
}

// runGenerated is RunGenerated with an explicit engine driver, so the
// equivalence tests can run one trace on every engine.
func runGenerated(cfg sim.Config, gt *GenTrace, disc string, opts StreamOptions, drive func(*sim.Network, *sim.Config, sim.Controller) error) (*StreamResult, error) {
	disc = strings.ToLower(strings.TrimSpace(disc))
	if disc == "" {
		disc = DisciplineFCFS
	}
	if err := ValidateDiscipline(disc); err != nil {
		return nil, err
	}
	if gt.Len() == 0 {
		return nil, fmt.Errorf("scheduler: generated trace has no jobs")
	}
	t := topology.New(cfg.Topology)
	p := t.Params()
	pattern := gt.Spec.Pattern
	if pattern == "" {
		pattern = "UN"
	}
	for i := 0; i < gt.Len(); i++ {
		n := int(gt.Nodes[i])
		if need := (n + p.P - 1) / p.P; need > t.NumRouters() {
			return nil, fmt.Errorf("scheduler: generated job %d needs %d routers but the machine has %d: it can never start",
				i, need, t.NumRouters())
		}
		if err := workload.ValidatePattern(pattern, n); err != nil {
			return nil, fmt.Errorf("scheduler: generated job %d (%d nodes): %w", i, n, err)
		}
	}
	wl := workload.NewDynamicStream(t, cfg.Seed)
	c := &genController{
		wl:            wl,
		gt:            gt,
		disc:          disc,
		load:          gt.Spec.Load,
		perR:          p.P,
		lastDeparture: -1,
	}
	var retained uint64
	if opts.MeasureRetained {
		c.onComplete = func(idx int, now int64) {
			if c.completed == c.gt.Len() {
				// Two collections: the first only moves sync.Pool contents
				// (engine scratch from earlier runs in this process) to the
				// victim cache; the second reclaims them.
				runtime.GC()
				runtime.GC()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				retained = ms.HeapAlloc
			}
		}
	}
	if streamTestHook != nil {
		streamTestHook(c)
	}
	net, err := sim.NewNetwork(&cfg, wl)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := drive(net, &cfg, c); err != nil {
		return nil, err
	}
	simRes := sim.NewResultFrom(net, &cfg, time.Since(start))
	ran := cfg.WarmupCycles + simRes.MeasuredCycles

	res := &StreamResult{
		Sim:           simRes,
		Discipline:    disc,
		Jobs:          gt.Len(),
		Started:       c.started,
		Completed:     c.completed,
		LastDeparture: c.lastDeparture,
		RanCycles:     ran,
		Wait:          c.wait,
		RunTime:       c.run,
		Slowdown:      c.slow,
		PeakRunning:   c.peakRunning,
		PeakQueue:     c.peakQueue,
		RetainedBytes: retained,
	}
	if c.started > 0 {
		res.WaitMean = c.waitSum / float64(c.started)
	}
	if c.completed > 0 {
		res.RunMean = c.runSum / float64(c.completed)
		res.SlowdownMean = c.slowSum / float64(c.completed)
	}
	// Censored jobs (still running at the horizon) contribute their partial
	// node-cycles to utilization.
	busy := c.busy
	for i := range c.running {
		busy += int64(c.gt.Nodes[c.running[i].idx]) * (ran - c.running[i].start)
	}
	if ran > 0 {
		res.Utilization = float64(busy) / (float64(t.NumNodes()) * float64(ran))
	}
	return res, nil
}
