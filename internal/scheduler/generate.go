package scheduler

import (
	"fmt"
	"math"

	"dragonfly/internal/rng"
	"dragonfly/internal/workload"
)

// Seeded synthetic trace generation: Poisson arrivals × lognormal job size
// and duration, the standard parametric model for open-system cluster
// workloads. A GenTrace is a structure-of-arrays trace — ~20 bytes per job,
// no per-job spec structs or names — so a million-job trace costs ~20 MB
// and the streaming scheduler core (stream.go) can run it without the
// detailed controller's per-job state.

// genSalt decorrelates the generator's random stream from the simulation
// and compile streams derived from the same seed.
const genSalt = 0x3c79ac492ba7b653

// GenSpec parameterises a synthetic trace. All jobs share the placement
// policy, intra-job pattern and per-node load; arrivals are a Poisson
// process (exponential inter-arrival times) and node counts and durations
// are lognormal, clamped to [2, MaxNodes] and [1, ∞) respectively.
type GenSpec struct {
	// Jobs is the trace length.
	Jobs int `json:"jobs"`
	// InterArrival is the mean inter-arrival time in cycles.
	InterArrival float64 `json:"inter_arrival"`
	// NodesMedian and NodesSigma are the median and log-space sigma of the
	// lognormal job size (nodes). Sigma 0 makes every job NodesMedian nodes.
	NodesMedian float64 `json:"nodes_median"`
	NodesSigma  float64 `json:"nodes_sigma"`
	// MaxNodes caps the job size — typically the machine's node count, so
	// every generated job can eventually start.
	MaxNodes int `json:"max_nodes"`
	// DurMedian and DurSigma are the median and log-space sigma of the
	// lognormal job duration in cycles.
	DurMedian float64 `json:"dur_median"`
	DurSigma  float64 `json:"dur_sigma"`
	// Load is every job's per-node offered load (0: the run default).
	Load float64 `json:"load,omitempty"`
	// Alloc is the placement policy of every job ("" = consecutive).
	Alloc string `json:"alloc,omitempty"`
	// Pattern is the intra-job traffic pattern of every job ("" = UN).
	Pattern string `json:"pattern,omitempty"`
	// FirstGroup seeds the consecutive/spread allocation scan.
	FirstGroup int `json:"first_group,omitempty"`
}

// validate rejects parameter combinations the generator cannot honour.
func (sp *GenSpec) validate() error {
	switch {
	case sp.Jobs < 1:
		return fmt.Errorf("scheduler: GenSpec.Jobs must be ≥ 1, got %d", sp.Jobs)
	case !(sp.InterArrival > 0):
		return fmt.Errorf("scheduler: GenSpec.InterArrival must be > 0, got %v", sp.InterArrival)
	case !(sp.NodesMedian >= 1):
		return fmt.Errorf("scheduler: GenSpec.NodesMedian must be ≥ 1, got %v", sp.NodesMedian)
	case sp.NodesSigma < 0 || sp.DurSigma < 0:
		return fmt.Errorf("scheduler: GenSpec sigmas must be ≥ 0, got nodes %v dur %v", sp.NodesSigma, sp.DurSigma)
	case sp.MaxNodes < 2:
		return fmt.Errorf("scheduler: GenSpec.MaxNodes must be ≥ 2, got %d", sp.MaxNodes)
	case !(sp.DurMedian >= 1):
		return fmt.Errorf("scheduler: GenSpec.DurMedian must be ≥ 1, got %v", sp.DurMedian)
	}
	return nil
}

// GenTrace is a generated trace in structure-of-arrays form: parallel
// per-job arrays instead of per-job structs, so retained size is ~20 B/job
// regardless of trace length. Arrival is nondecreasing. The workload-level
// fields every job shares live once in Spec.
type GenTrace struct {
	Spec     GenSpec `json:"spec"`
	Seed     uint64  `json:"seed"`
	Arrival  []int64 `json:"arrival"`
	Nodes    []int32 `json:"nodes"`
	Duration []int64 `json:"duration"`
}

// Generate synthesizes a trace from the spec and seed. The result is a
// deterministic function of (spec, seed) alone — same inputs, byte-identical
// trace, on any machine and at any worker count (generation is single-
// streamed; the draws per job are fixed at arrival, size, duration, in that
// order). The placement policy does not influence the draws, so studies
// comparing disciplines × allocation policies at one seed schedule the
// exact same job population.
func Generate(spec GenSpec, seed uint64) (*GenTrace, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	switch spec.Alloc {
	case "", workload.AllocConsecutive, workload.AllocRandom, workload.AllocSpread:
	default:
		return nil, fmt.Errorf("scheduler: GenSpec.Alloc: unknown allocation policy %q (known: %s, %s, %s)",
			spec.Alloc, workload.AllocConsecutive, workload.AllocRandom, workload.AllocSpread)
	}
	gt := &GenTrace{
		Spec:     spec,
		Seed:     seed,
		Arrival:  make([]int64, spec.Jobs),
		Nodes:    make([]int32, spec.Jobs),
		Duration: make([]int64, spec.Jobs),
	}
	rnd := rng.New(seed ^ genSalt)
	t := 0.0
	for i := 0; i < spec.Jobs; i++ {
		t += expDraw(rnd, spec.InterArrival)
		gt.Arrival[i] = int64(t)
		n := int32(math.Round(spec.NodesMedian * math.Exp(spec.NodesSigma*normDraw(rnd))))
		if n < 2 {
			n = 2
		}
		if n > int32(spec.MaxNodes) {
			n = int32(spec.MaxNodes)
		}
		gt.Nodes[i] = n
		d := int64(math.Round(spec.DurMedian * math.Exp(spec.DurSigma*normDraw(rnd))))
		if d < 1 {
			d = 1
		}
		gt.Duration[i] = d
	}
	return gt, nil
}

// expDraw samples an exponential with the given mean by inversion.
// 1-Float64() is in (0,1], so the log argument is never zero.
func expDraw(rnd *rng.Source, mean float64) float64 {
	return -mean * math.Log(1-rnd.Float64())
}

// normDraw samples a standard normal by Box-Muller, consuming exactly two
// uniforms (the sine partner is discarded so the per-job draw count is a
// constant — the invariant trace determinism rests on).
func normDraw(rnd *rng.Source) float64 {
	u1 := 1 - rnd.Float64() // (0,1]
	u2 := rnd.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Len returns the number of jobs.
func (gt *GenTrace) Len() int { return len(gt.Arrival) }

// jobSpec builds the workload spec of job i — materialised one at a time at
// placement, never stored per job.
func (gt *GenTrace) jobSpec(i int) workload.JobSpec {
	return workload.JobSpec{
		Nodes:      int(gt.Nodes[i]),
		Alloc:      gt.Spec.Alloc,
		FirstGroup: gt.Spec.FirstGroup,
		Pattern:    gt.Spec.Pattern,
		Load:       gt.Spec.Load,
	}
}

// Trace expands the generated trace to the detailed per-job form the replay
// controller runs. Intended for small traces (cross-checks, JSON export);
// it materialises every job spec, which is exactly what the streaming core
// exists to avoid.
func (gt *GenTrace) Trace(disc string) Trace {
	tr := Trace{Discipline: disc, Jobs: make([]TraceJob, gt.Len())}
	for i := range tr.Jobs {
		tr.Jobs[i] = TraceJob{
			JobSpec:      gt.jobSpec(i),
			Arrival:      gt.Arrival[i],
			Duration:     gt.Duration[i],
			DurationKind: DurationCycles,
		}
	}
	return tr
}
