package scheduler

import (
	"math"
	"sort"
	"time"

	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
)

// JobResult is one job's scheduler lifecycle. Cycles are absolute
// simulation cycles (warm-up included); -1 marks events that never happened
// within the run (a job that never started, or never completed).
type JobResult struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	// Alloc echoes the job's allocation policy for reports.
	Alloc      string `json:"alloc"`
	Arrival    int64  `json:"arrival"`
	Start      int64  `json:"start"`
	Completion int64  `json:"completion"`
	// Wait is Start-Arrival; Run is Completion-Start; both -1 when the
	// bounding event never happened.
	Wait int64 `json:"wait"`
	Run  int64 `json:"run"`
	// Slowdown is (Wait+Run)/Run, the classic scheduling metric (1 = ran
	// as if alone and unqueued in time); 0 for jobs that never completed.
	Slowdown float64 `json:"slowdown,omitempty"`
	// Delivered counts the job's packets delivered over its whole lifetime
	// (warm-up included — the live counter, not the measurement window).
	Delivered int64 `json:"delivered_packets"`
	// Routers is the job's allocation (empty if it never started).
	Routers []int `json:"routers,omitempty"`
}

// Result is the outcome of a scheduled run: the network-level measurement
// (Sim, over the configured measurement window) plus the per-job lifecycle
// and the trace-level aggregates.
type Result struct {
	// Sim carries the usual per-router and per-job network metrics. For
	// jobs that departed before the run ended, Sim's end-of-run node
	// attribution (JobNodes, JobRouters) is empty — use the lifecycle
	// records here instead.
	Sim        *sim.Result `json:"sim"`
	Discipline string      `json:"discipline"`
	Jobs       []JobResult `json:"jobs"`
	// Completed counts jobs that departed within the run; Makespan is the
	// completion cycle of the last one (-1 when none completed).
	Completed int   `json:"completed"`
	Makespan  int64 `json:"makespan"`
	// TotalCycles echoes warm-up + measured cycles, the horizon lifecycle
	// cycles are relative to.
	TotalCycles int64 `json:"total_cycles"`
}

// SlowdownQuantile returns the q-quantile of the completed jobs' slowdowns
// (0.5 = median, 0.99 = tail), or 0 when no job completed.
func (r *Result) SlowdownQuantile(q float64) float64 {
	s := make([]float64, 0, len(r.Jobs))
	for i := range r.Jobs {
		if r.Jobs[i].Slowdown > 0 {
			s = append(s, r.Jobs[i].Slowdown)
		}
	}
	if len(s) == 0 {
		return 0
	}
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// MeanSlowdown returns the mean slowdown over completed jobs (0 when none).
func (r *Result) MeanSlowdown() float64 {
	var sum float64
	n := 0
	for i := range r.Jobs {
		if r.Jobs[i].Slowdown > 0 {
			sum += r.Jobs[i].Slowdown
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Run replays the trace on one simulation under cfg. The run spans the
// configured warm-up + measured cycles; jobs whose lifecycle extends beyond
// it are reported censored (Completion -1). Deterministic in cfg.Seed and
// bit-identical for any cfg.Workers.
func Run(cfg sim.Config, tr Trace) (*Result, error) {
	return run(cfg, tr, sim.RunNetworkWithController)
}

// run is Run with an explicit engine driver, so the equivalence tests can
// replay one trace on the scheduler and dense reference engines alike.
func run(cfg sim.Config, tr Trace, drive func(*sim.Network, *sim.Config, sim.Controller) error) (*Result, error) {
	norm, err := tr.normalized()
	if err != nil {
		return nil, err
	}
	ctrl, wl, err := newController(topology.New(cfg.Topology), norm, cfg.Seed)
	if err != nil {
		return nil, err
	}
	net, err := sim.NewNetwork(&cfg, wl)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := drive(net, &cfg, ctrl); err != nil {
		return nil, err
	}
	simRes := sim.NewResultFrom(net, &cfg, time.Since(start))

	res := &Result{
		Sim:         simRes,
		Discipline:  norm.Discipline,
		Jobs:        make([]JobResult, len(ctrl.jobs)),
		Makespan:    -1,
		TotalCycles: cfg.WarmupCycles + cfg.MeasureCycles,
	}
	for j := range ctrl.jobs {
		st := &ctrl.jobs[j]
		jr := JobResult{
			Name:       wl.JobName(j),
			Nodes:      wl.JobSpecOf(j).Nodes,
			Alloc:      wl.JobSpecOf(j).Alloc,
			Arrival:    st.arrival,
			Start:      st.start,
			Completion: st.completion,
			Wait:       -1,
			Run:        -1,
			Delivered:  net.LiveJobDelivered(j, nil),
			Routers:    st.routers,
		}
		if st.start >= 0 {
			jr.Wait = st.start - st.arrival
		}
		if st.completion >= 0 {
			jr.Run = st.completion - st.start
			jr.Slowdown = float64(jr.Wait+jr.Run) / float64(jr.Run)
			res.Completed++
			if st.completion > res.Makespan {
				res.Makespan = st.completion
			}
		}
		res.Jobs[j] = jr
	}
	return res, nil
}
