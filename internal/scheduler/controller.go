package scheduler

import (
	"fmt"
	"sort"

	"dragonfly/internal/sim"
	"dragonfly/internal/topology"
	"dragonfly/internal/workload"
)

// reconfigurator is the slice of *sim.Reconfig the controller actually
// uses. Taking the interface instead of the concrete handle lets the EASY
// oracle test dry-run the exact production controller — same Apply path,
// same planStarts decisions — against a fake that records node activity
// without building a network.
type reconfigurator interface {
	SetNodeActive(node int, load float64)
	SetNodeSilent(node int)
	SetNodeJob(node, job int)
	LiveJobDelivered(job int, routers []int) int64
}

// controller is the sim.Controller that replays a trace: it admits the full
// job population at construction (job indices and per-job accounting are
// fixed for the run), then places, polls and releases jobs at cycle
// boundaries. All its decisions are deterministic functions of the cycle
// and of per-job delivered counters read at cycle boundaries, so a trace
// replays bit-identically on every engine.
type controller struct {
	wl      *workload.Workload
	disc    string
	jobs    []jobState
	order   []int // job indices sorted by (arrival, trace position)
	nextArr int   // next unqueued entry of order
	queue   []int // arrived, waiting; in (arrival, trace position) order
	running []int // placed, not yet departed; in placement order

	// planStarts scratch, reused across events.
	qScratch []qJob
	rScratch []rJob
}

// jobState is one job's lifecycle.
type jobState struct {
	arrival    int64
	durCycles  int64 // > 0: departs at start+durCycles
	targetPkts int64 // > 0: departs once this many packets delivered
	load       float64
	need       int   // routers the job occupies when placed
	start      int64 // -1 until placed
	completion int64 // -1 until departed
	routers    []int // allocation, captured at placement
	nodes      []int
}

// newController admits every trace job into a fresh dynamic workload and
// builds the arrival order. tr must be normalized.
func newController(t *topology.Topology, tr Trace, seed uint64) (*controller, *workload.Workload, error) {
	wl := workload.NewDynamic(t, seed)
	c := &controller{
		wl:    wl,
		disc:  tr.Discipline,
		jobs:  make([]jobState, len(tr.Jobs)),
		order: make([]int, len(tr.Jobs)),
	}
	for i := range tr.Jobs {
		tj := &tr.Jobs[i]
		j, err := wl.Admit(tj.JobSpec)
		if err != nil {
			return nil, nil, err
		}
		if need := wl.RoutersFor(j); need > t.NumRouters() {
			return nil, nil, fmt.Errorf("scheduler: job %q needs %d routers but the machine has %d: it can never start",
				tj.Name, need, t.NumRouters())
		}
		st := &c.jobs[j]
		st.arrival = tj.Arrival
		st.load = wl.JobSpecOf(j).Load
		st.need = wl.RoutersFor(j)
		st.start, st.completion = -1, -1
		switch tj.DurationKind {
		case DurationCycles:
			st.durCycles = tj.Duration
		case DurationPackets:
			st.targetPkts = tj.Duration
		}
		c.order[i] = j
	}
	sort.SliceStable(c.order, func(a, b int) bool {
		return c.jobs[c.order[a]].arrival < c.jobs[c.order[b]].arrival
	})
	return c, wl, nil
}

// NextEvent implements sim.Controller: the earliest future cycle with
// scheduler work — the next arrival, the next known (cycle-budget)
// departure, or the next cycle when any packet-target job is running and
// its counter must be polled. Queue movement happens only at those cycles,
// because capacity changes only at departures and demand only at arrivals.
func (c *controller) NextEvent(now int64) int64 {
	next := int64(-1)
	add := func(t int64) {
		if t <= now {
			t = now + 1
		}
		if next < 0 || t < next {
			next = t
		}
	}
	if c.nextArr < len(c.order) {
		add(c.jobs[c.order[c.nextArr]].arrival)
	}
	for _, j := range c.running {
		st := &c.jobs[j]
		switch {
		case st.durCycles > 0:
			add(st.start + st.durCycles)
		case st.targetPkts > 0:
			add(now + 1)
		}
	}
	return next
}

// Apply implements sim.Controller by delegating to the reconfigurator-typed
// apply, the path the oracle test dry-runs.
func (c *controller) Apply(rc *sim.Reconfig, now int64) { c.apply(rc, now) }

// apply processes one scheduler event: departures first (so a same-cycle
// arrival can recycle the freed allocation), then arrivals, then placement
// under the discipline via planStarts.
func (c *controller) apply(rc reconfigurator, now int64) {
	for i := 0; i < len(c.running); {
		j := c.running[i]
		st := &c.jobs[j]
		done := st.durCycles > 0 && now >= st.start+st.durCycles
		if !done && st.targetPkts > 0 {
			done = rc.LiveJobDelivered(j, st.routers) >= st.targetPkts
		}
		if !done {
			i++
			continue
		}
		st.completion = now
		for _, n := range st.nodes {
			rc.SetNodeSilent(n)
			rc.SetNodeJob(n, -1)
		}
		c.wl.Release(j)
		c.running = append(c.running[:i], c.running[i+1:]...)
	}
	for c.nextArr < len(c.order) && c.jobs[c.order[c.nextArr]].arrival <= now {
		c.queue = append(c.queue, c.order[c.nextArr])
		c.nextArr++
	}
	if len(c.queue) == 0 {
		return
	}
	c.qScratch = c.qScratch[:0]
	for _, j := range c.queue {
		st := &c.jobs[j]
		dur := int64(-1)
		if st.durCycles > 0 {
			dur = st.durCycles
		}
		c.qScratch = append(c.qScratch, qJob{need: st.need, dur: dur})
	}
	c.rScratch = c.rScratch[:0]
	for _, j := range c.running {
		st := &c.jobs[j]
		end := int64(-1)
		if st.durCycles > 0 {
			end = st.start + st.durCycles
		}
		c.rScratch = append(c.rScratch, rJob{need: st.need, end: end})
	}
	picks := planStarts(c.disc, now, c.wl.FreeRouters(), c.qScratch, c.rScratch)
	if len(picks) == 0 {
		return
	}
	// Place in ascending queue order — the order planStarts returns — so
	// the allocation RNG stream matches the pre-planStarts controller's
	// scan-in-queue-order placement exactly.
	for _, k := range picks {
		c.place(rc, c.queue[k], now)
	}
	kept := c.queue[:0]
	pi := 0
	for i, j := range c.queue {
		if pi < len(picks) && picks[pi] == i {
			pi++
			continue
		}
		kept = append(kept, j)
	}
	c.queue = kept
}

// place allocates job j now and activates its nodes. planStarts only picks
// jobs that fit and Admit validated the spec, so Place cannot fail here.
func (c *controller) place(rc reconfigurator, j int, now int64) {
	if err := c.wl.Place(j); err != nil {
		panic(fmt.Sprintf("scheduler: placing admitted job that fits: %v", err))
	}
	st := &c.jobs[j]
	st.start = now
	st.routers = c.wl.JobRouters(j)
	st.nodes = c.wl.JobNodeIDs(j)
	for _, n := range st.nodes {
		rc.SetNodeJob(n, j)
		rc.SetNodeActive(n, st.load)
	}
	c.running = append(c.running, j)
}
