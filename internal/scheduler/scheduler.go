// Package scheduler turns the interference study into a full job-scheduler
// simulator: it drives one simulation through a timed job trace — jobs with
// an arrival cycle, a node count, a duration (a cycle budget or a
// packets-delivered target, or none) and a workload.JobSpec placement/
// traffic description — under a queueing discipline (FCFS, aggressive
// backfill, or EASY reservation-based backfill: see planStarts for the
// decision core shared by all three). Arriving jobs are placed with the
// existing allocation policies
// (consecutive/random/spread), departing jobs free their routers for
// recycling, and each job's wait, run and slowdown are recorded next to the
// usual network metrics.
//
// The scheduler is a sim.Controller: it runs only between cycles, on the
// engine coordinator, so traces replay bit-identically across the
// sequential, scheduler and parallel engines at any worker count. A
// degenerate trace — every job arrives at cycle 0, none departs — executes
// the exact static-workload run (workload.Compile + sim.RunWithPattern)
// down to the RNG streams; the equivalence is enforced by
// TestScheduleDegenerateMatchesRunWorkload.
package scheduler

import (
	"fmt"
	"strconv"
	"strings"

	"dragonfly/internal/topology"
	"dragonfly/internal/workload"
)

// Queueing discipline names.
const (
	// DisciplineFCFS starts jobs strictly in arrival order: a job that does
	// not fit blocks everything behind it.
	DisciplineFCFS = "fcfs"
	// DisciplineBackfill starts any queued job that fits when the head does
	// not (aggressive backfill: no reservation for the head job, so small
	// late jobs may delay a large blocked one).
	DisciplineBackfill = "backfill"
	// DisciplineEASY is reservation-based (EASY) backfill: a blocked head
	// job gets a shadow-time reservation computed from the running jobs'
	// remaining cycle budgets, and a queued job may only jump ahead if it
	// fits now and either finishes by the shadow time or uses routers the
	// head will not need then — so backfilling never delays the head. The
	// reservation is exact for cycle-duration jobs; running jobs with
	// unknown durations contribute nothing to the shadow computation (see
	// planStarts).
	DisciplineEASY = "easy"
)

// Duration kind names.
const (
	// DurationNone: the job runs until the simulation ends.
	DurationNone = "none"
	// DurationCycles: the job departs Duration cycles after it starts.
	DurationCycles = "cycles"
	// DurationPackets: the job departs once it has delivered Duration
	// packets (counted from its start, warm-up included).
	DurationPackets = "packets"
)

// KnownDisciplines lists the queueing discipline names, for flag usage
// strings and error messages.
func KnownDisciplines() []string {
	return []string{DisciplineFCFS, DisciplineBackfill, DisciplineEASY}
}

// KnownDurationKinds lists the duration kind names.
func KnownDurationKinds() []string { return []string{DurationNone, DurationCycles, DurationPackets} }

// ValidateDiscipline checks a queueing discipline name, listing the known
// names on a mismatch — the flag-time check of the df* convention ("" is
// the FCFS default).
func ValidateDiscipline(name string) error {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", DisciplineFCFS, DisciplineBackfill, DisciplineEASY:
		return nil
	}
	return fmt.Errorf("scheduler: unknown discipline %q (known: %s)",
		name, strings.Join(KnownDisciplines(), ", "))
}

// TraceJob is one job of a trace: a workload job spec (size, allocation
// policy, intra-job pattern, load, phase) plus its scheduler lifecycle.
type TraceJob struct {
	workload.JobSpec
	// Arrival is the absolute simulation cycle (0 = first cycle, warm-up
	// included) at which the job enters the queue.
	Arrival int64 `json:"arrival,omitempty"`
	// Duration is interpreted per DurationKind: a cycle budget, a
	// packets-delivered target, or ignored for "none".
	Duration int64 `json:"duration,omitempty"`
	// DurationKind is "none", "cycles" or "packets". Empty defaults to
	// "cycles" when Duration > 0 and "none" otherwise.
	DurationKind string `json:"duration_kind,omitempty"`
}

// Trace is a timed job trace: the dfsched -trace JSON form.
type Trace struct {
	// Discipline is "fcfs" (default), "backfill" or "easy".
	Discipline string     `json:"discipline,omitempty"`
	Jobs       []TraceJob `json:"jobs"`
}

// normalized returns a copy of the trace with defaults filled and
// scheduler-level fields validated (workload-level fields are validated by
// workload.Admit when the jobs are registered).
func (tr Trace) normalized() (Trace, error) {
	out := tr
	out.Discipline = strings.ToLower(strings.TrimSpace(tr.Discipline))
	if out.Discipline == "" {
		out.Discipline = DisciplineFCFS
	}
	if err := ValidateDiscipline(out.Discipline); err != nil {
		return out, err
	}
	if len(tr.Jobs) == 0 {
		return out, fmt.Errorf("scheduler: trace has no jobs")
	}
	out.Jobs = append([]TraceJob(nil), tr.Jobs...)
	for i := range out.Jobs {
		tj := &out.Jobs[i]
		if tj.Arrival < 0 {
			return out, fmt.Errorf("scheduler: job %d: negative arrival cycle %d", i, tj.Arrival)
		}
		kind := strings.ToLower(strings.TrimSpace(tj.DurationKind))
		if kind == "" {
			kind = DurationNone
			if tj.Duration > 0 {
				kind = DurationCycles
			}
		}
		switch kind {
		case DurationNone:
			if tj.Duration != 0 {
				return out, fmt.Errorf("scheduler: job %d: duration %d with duration kind %q", i, tj.Duration, DurationNone)
			}
		case DurationCycles, DurationPackets:
			if tj.Duration < 1 {
				return out, fmt.Errorf("scheduler: job %d: duration kind %q needs duration ≥ 1, got %d", i, kind, tj.Duration)
			}
		default:
			return out, fmt.Errorf("scheduler: job %d: unknown duration kind %q (known: %s)",
				i, tj.DurationKind, strings.Join(KnownDurationKinds(), ", "))
		}
		tj.DurationKind = kind
	}
	return out, nil
}

// Validate checks the whole trace against a topology without running
// anything: discipline and duration kinds, every job spec (allocation
// policy, pattern names against the job size, phase fields, duplicate
// names), and that every job can ever fit on the machine. It is the
// flag-time validation for dfsched, matching the df* convention of
// rejecting typos before the first simulation.
func (tr Trace) Validate(p topology.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	norm, err := tr.normalized()
	if err != nil {
		return err
	}
	t := topology.New(p)
	wl := workload.NewDynamic(t, 1)
	for i := range norm.Jobs {
		j, err := wl.Admit(norm.Jobs[i].JobSpec)
		if err != nil {
			return err
		}
		if need := wl.RoutersFor(j); need > t.NumRouters() {
			return fmt.Errorf("scheduler: job %q needs %d routers but the machine has %d: it can never start",
				norm.Jobs[i].Name, need, t.NumRouters())
		}
	}
	return nil
}

// ParseTraceJob parses the compact one-line trace-job form used by
// dfsched -job: the workload.ParseJob syntax plus the scheduler keys
//
//	arrival=<cycle>,duration=<n>,dkind=cycles|packets|none
//
// e.g. "name=a,nodes=72,alloc=spread,load=0.3,arrival=1000,duration=5000".
func ParseTraceJob(s string) (TraceJob, error) {
	var tj TraceJob
	rest := make([]string, 0, 8)
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return tj, fmt.Errorf("scheduler: trace-job field %q is not key=value", kv)
		}
		var err error
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "arrival":
			tj.Arrival, err = strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		case "duration":
			tj.Duration, err = strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		case "dkind", "duration_kind":
			tj.DurationKind = strings.ToLower(strings.TrimSpace(val))
		default:
			rest = append(rest, kv)
		}
		if err != nil {
			return tj, fmt.Errorf("scheduler: bad value for trace-job field %q: %w", key, err)
		}
	}
	js, err := workload.ParseJob(strings.Join(rest, ","))
	if err != nil {
		return tj, err
	}
	tj.JobSpec = js
	return tj, nil
}
