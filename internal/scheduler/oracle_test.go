package scheduler

import (
	"fmt"
	"sort"
	"testing"

	"dragonfly/internal/rng"
	"dragonfly/internal/topology"
	"dragonfly/internal/workload"
)

// The EASY oracle: an independent, slow, obviously-correct reimplementation
// of the scheduling disciplines over the count-based resource model,
// checked against the production controller on randomized traces. The
// production EASY code earns its shadow/extra bookkeeping by matching this
// oracle's *definitional* backfill rule exactly: a candidate may start now
// iff, assuming no further backfills, the head job's earliest possible
// start with the candidate running is no later than without it.

// oracleJob is one job of an oracle trace.
type oracleJob struct {
	arrival int64
	nodes   int
	need    int // ceil(nodes/P), precomputed
	dur     int64
	start   int64 // -1 until started
	// shadowCap is the tightest head-start bound recorded while this job
	// was the blocked head (-1: never blocked). EASY promises the actual
	// start never exceeds it.
	shadowCap int64
}

// earliestStart returns the first cycle ≥ now at which `need` routers are
// free, given `free` free now and the running jobs' departure times —
// assuming nothing else starts. Definitional: it tests every candidate
// event time by summing what has departed by then. Returns -1 if never.
func earliestStart(need, free int, running []rJob, now int64) int64 {
	if need <= free {
		return now
	}
	times := make([]int64, 0, len(running))
	for _, r := range running {
		times = append(times, r.end)
	}
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	for _, t := range times {
		avail := free
		for _, r := range running {
			if r.end <= t {
				avail += r.need
			}
		}
		if avail >= need {
			return t
		}
	}
	return -1
}

// oracleSchedule brute-force simulates the whole trace on a count-based
// machine of `routers` routers under the discipline, filling each job's
// start cycle (and shadowCap for EASY heads). Event-driven but with no
// incremental bookkeeping: every decision recomputes from scratch.
func oracleSchedule(disc string, jobs []oracleJob, routers int) {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return jobs[order[a]].arrival < jobs[order[b]].arrival })
	for i := range jobs {
		jobs[i].start, jobs[i].shadowCap = -1, -1
	}
	var running []rJob
	var queue []int
	nextArr := 0
	for {
		// Next event: earliest pending arrival or departure.
		next := int64(-1)
		if nextArr < len(order) {
			next = jobs[order[nextArr]].arrival
		}
		for _, r := range running {
			if next < 0 || r.end < next {
				next = r.end
			}
		}
		if next < 0 {
			return
		}
		now := next
		kept := running[:0]
		for _, r := range running {
			if r.end > now {
				kept = append(kept, r)
			}
		}
		running = kept
		for nextArr < len(order) && jobs[order[nextArr]].arrival <= now {
			queue = append(queue, order[nextArr])
			nextArr++
		}
		free := routers
		for _, r := range running {
			free -= r.need
		}
		begin := func(qi int) {
			j := queue[qi]
			jobs[j].start = now
			running = append(running, rJob{need: jobs[j].need, end: now + jobs[j].dur})
			free -= jobs[j].need
			queue = append(queue[:qi], queue[qi+1:]...)
		}
		switch disc {
		case DisciplineFCFS:
			for len(queue) > 0 && jobs[queue[0]].need <= free {
				begin(0)
			}
		case DisciplineBackfill:
			for qi := 0; qi < len(queue); {
				if jobs[queue[qi]].need <= free {
					begin(qi)
				} else {
					qi++
				}
			}
		case DisciplineEASY:
			for len(queue) > 0 && jobs[queue[0]].need <= free {
				begin(0)
			}
			if len(queue) == 0 {
				break
			}
			head := &jobs[queue[0]]
			sBase := earliestStart(head.need, free, running, now)
			if sBase >= 0 && (head.shadowCap < 0 || sBase < head.shadowCap) {
				head.shadowCap = sBase
			}
			for qi := 1; qi < len(queue); {
				cand := &jobs[queue[qi]]
				if cand.need > free {
					qi++
					continue
				}
				// Definitional rule: tentatively run the candidate and ask
				// whether the head could still start by sBase.
				with := append(append([]rJob(nil), running...), rJob{need: cand.need, end: now + cand.dur})
				sNew := earliestStart(head.need, free-cand.need, with, now)
				delays := sBase >= 0 && (sNew < 0 || sNew > sBase)
				if sBase < 0 || !delays {
					begin(qi)
				} else {
					qi++
				}
			}
		}
	}
}

// fakeReconfig satisfies the controller's reconfigurator without a network,
// so the oracle tests dry-run the exact production Apply path.
type fakeReconfig struct{}

func (fakeReconfig) SetNodeActive(int, float64)        {}
func (fakeReconfig) SetNodeSilent(int)                 {}
func (fakeReconfig) SetNodeJob(int, int)               {}
func (fakeReconfig) LiveJobDelivered(int, []int) int64 { return 0 }

// dryRunController replays the trace through the production controller with
// a fake reconfigurator: the same newController, NextEvent and apply code a
// simulation drives, minus the network. Returns per-trace-position starts.
func dryRunController(t *testing.T, topo *topology.Topology, tr Trace, seed uint64) []int64 {
	t.Helper()
	norm, err := tr.normalized()
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	ctrl, _, err := newController(topo, norm, seed)
	if err != nil {
		t.Fatalf("newController: %v", err)
	}
	var fake fakeReconfig
	guard := 0
	for now := ctrl.NextEvent(-1); now >= 0; now = ctrl.NextEvent(now) {
		ctrl.apply(fake, now)
		if guard++; guard > 100000 {
			t.Fatal("controller event loop did not terminate")
		}
	}
	starts := make([]int64, len(ctrl.jobs))
	for j := range ctrl.jobs {
		starts[j] = ctrl.jobs[j].start
	}
	return starts
}

// randomOracleTrace draws a small trace of cycle-duration jobs. Node counts
// span [2, nodes(machine)] so heads block often and backfill windows open.
func randomOracleTrace(rnd *rng.Source, machineNodes int) []oracleJob {
	n := 4 + rnd.Intn(22)
	jobs := make([]oracleJob, n)
	for i := range jobs {
		jobs[i] = oracleJob{
			arrival: int64(rnd.Intn(400)),
			nodes:   2 + rnd.Intn(machineNodes-1),
			dur:     1 + int64(rnd.Intn(400)),
		}
	}
	return jobs
}

// TestEASYOracle checks the production controller against the brute-force
// oracle on randomized traces — the acceptance criterion demands exact
// start-cycle agreement on ≥1000 EASY traces; FCFS and aggressive backfill
// ride along on the same harness. It also asserts the EASY reservation
// invariant: no head job ever starts later than the tightest shadow time
// recorded while it was blocked.
func TestEASYOracle(t *testing.T) {
	cfg := schedCfg()
	topo := topology.New(cfg.Topology)
	p := topo.Params()
	machineNodes := topo.NumNodes()
	counts := map[string]int{DisciplineEASY: 1100, DisciplineFCFS: 200, DisciplineBackfill: 200}
	if testing.Short() {
		counts = map[string]int{DisciplineEASY: 200, DisciplineFCFS: 50, DisciplineBackfill: 50}
	}
	rnd := rng.New(0xea57_0ac1e)
	for _, disc := range []string{DisciplineEASY, DisciplineFCFS, DisciplineBackfill} {
		for trace := 0; trace < counts[disc]; trace++ {
			jobs := randomOracleTrace(rnd, machineNodes)
			for i := range jobs {
				jobs[i].need = (jobs[i].nodes + p.P - 1) / p.P
			}
			oracleSchedule(disc, jobs, topo.NumRouters())

			tr := Trace{Discipline: disc, Jobs: make([]TraceJob, len(jobs))}
			for i := range jobs {
				tr.Jobs[i] = TraceJob{
					JobSpec:      jobSpecN(jobs[i].nodes),
					Arrival:      jobs[i].arrival,
					Duration:     jobs[i].dur,
					DurationKind: DurationCycles,
				}
			}
			starts := dryRunController(t, topo, tr, uint64(trace))
			for i := range jobs {
				if starts[i] != jobs[i].start {
					t.Fatalf("%s trace %d: job %d (arr %d, need %d, dur %d): production start %d, oracle start %d\n%s",
						disc, trace, i, jobs[i].arrival, jobs[i].need, jobs[i].dur,
						starts[i], jobs[i].start, describeOracleTrace(jobs))
				}
				if disc == DisciplineEASY && jobs[i].shadowCap >= 0 && starts[i] > jobs[i].shadowCap {
					t.Fatalf("%s trace %d: job %d started at %d, past its shadow-time bound %d\n%s",
						disc, trace, i, starts[i], jobs[i].shadowCap, describeOracleTrace(jobs))
				}
			}
		}
	}
}

func describeOracleTrace(jobs []oracleJob) string {
	s := ""
	for i, j := range jobs {
		s += fmt.Sprintf("  job %d: arrival=%d nodes=%d need=%d dur=%d start=%d shadowCap=%d\n",
			i, j.arrival, j.nodes, j.need, j.dur, j.start, j.shadowCap)
	}
	return s
}

// TestShadowTime pins the reservation arithmetic on hand-worked cases.
func TestShadowTime(t *testing.T) {
	cases := []struct {
		name       string
		need, free int
		running    []rJob
		wantS      int64
		wantE      int
	}{
		{"fits-now", 3, 4, nil, 0, 1},
		{"one-departure", 5, 2, []rJob{{need: 4, end: 100}}, 100, 1},
		{"accumulates", 6, 1, []rJob{{need: 2, end: 50}, {need: 3, end: 80}}, 80, 0},
		{"tie-counts-all", 4, 0, []rJob{{need: 2, end: 60}, {need: 3, end: 60}}, 60, 1},
		{"unknown-never", 5, 2, []rJob{{need: 4, end: -1}}, -1, 0},
		{"unknown-skipped", 5, 1, []rJob{{need: 9, end: -1}, {need: 4, end: 70}}, 70, 0},
	}
	for _, tc := range cases {
		s, e := shadowTime(tc.need, tc.free, tc.running)
		if s != tc.wantS || e != tc.wantE {
			t.Errorf("%s: shadowTime(%d, %d, %v) = (%d, %d), want (%d, %d)",
				tc.name, tc.need, tc.free, tc.running, s, e, tc.wantS, tc.wantE)
		}
	}
}

// TestPlanStartsEASY pins the backfill rules on a hand-worked scenario
// where all three disciplines answer differently.
func TestPlanStartsEASY(t *testing.T) {
	// Machine: 10 routers, 7 free; 3 busy until cycle 100.
	// Queue: head needs 8 (blocked; shadow S = 100, spare E = 10-8 = 2),
	// then a: need 5 / dur 500 (outlives S, exceeds the spare — would
	// delay the head; EASY rejects, aggressive backfill takes it),
	// then b: need 4 / dur 50 (ends by S: EASY ok),
	// then c: need 2 / dur 500 (outlives S but fits the spare: EASY ok),
	// then d: need 1 / dur 100 (ends exactly at S: EASY ok).
	queue := []qJob{
		{need: 8, dur: 40},
		{need: 5, dur: 500},
		{need: 4, dur: 50},
		{need: 2, dur: 500},
		{need: 1, dur: 100},
	}
	running := []rJob{{need: 3, end: 100}}
	if got, want := planStarts(DisciplineEASY, 0, 7, queue, running), []int{2, 3, 4}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("planStarts easy = %v, want %v", got, want)
	}
	// FCFS: head blocked, nothing starts.
	if got := planStarts(DisciplineFCFS, 0, 7, queue, running); len(got) != 0 {
		t.Fatalf("planStarts fcfs = %v, want none", got)
	}
	// Aggressive backfill: a (5≤7) then c (2≤2); b and d no longer fit.
	if got, want := planStarts(DisciplineBackfill, 0, 7, queue, running), []int{1, 3}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("planStarts backfill = %v, want %v", got, want)
	}
}

// jobSpecN builds the minimal valid job spec the oracle traces use.
func jobSpecN(nodes int) workload.JobSpec {
	return workload.JobSpec{Nodes: nodes}
}
