package scheduler

import "sort"

// The scheduling decision core. planStarts is a pure function from queue
// state to start decisions: no workload, no network, no RNG — which is what
// lets the EASY oracle test drive the exact production decision code over
// thousands of randomized traces without building a simulation, and what
// lets the detailed (replay) and streaming (generated-trace) controllers
// share one implementation.
//
// Resource model: allocation policies take any free routers (fragmentation
// never blocks them — workload.Fits is exactly a free-count check), so the
// whole machine state a discipline needs is one integer. That is also why
// the EASY reservation is *exact* for cycle-duration jobs: the shadow time
// computed from running jobs' remaining budgets is precisely when the head
// fits, not a fragmentation-optimistic bound.

// qJob is a queued job as the disciplines see it: its router demand and its
// cycle budget (dur < 0: unknown — a "none" or packet-target duration).
type qJob struct {
	need int
	dur  int64
}

// rJob is a running job as the disciplines see it: its router occupancy and
// its departure cycle (end < 0: unknown).
type rJob struct {
	need int
	end  int64
}

// planStarts decides which queued jobs start at cycle now, given free
// routers and the running set, under the discipline. It returns queue
// positions in ascending order — the order the caller must place them in,
// so the placement RNG stream is identical whichever controller drives it.
//
//   - fcfs: start jobs strictly in queue order; the first that does not fit
//     blocks everything behind it.
//   - backfill: start every job that fits, in queue order, with no
//     reservation for blocked jobs.
//   - easy: start head jobs in order while they fit. When the head blocks,
//     give it a reservation at its shadow time S — the earliest cycle at
//     which the routers freed by running jobs (in departure order)
//     accumulate to the head's demand — and let E be the routers spare at S
//     beyond the head's demand. A later queued job may start now iff it
//     fits now and (a) its budget is known and it ends by S (its routers
//     are back before the head needs them), or (b) it fits within E
//     (the head does not need its routers at S; E is decremented so
//     concurrent backfills cannot jointly oversubscribe the spare).
//     Running jobs with unknown budgets never free routers as far as the
//     shadow computation is concerned; if the head's demand cannot be met
//     from known departures at all there is no reservation to protect
//     (S = -1) and any fitting job may start — aggressive backfill is the
//     only sound fallback when no bound on the head's start exists.
func planStarts(disc string, now int64, free int, queue []qJob, running []rJob) []int {
	var picks []int
	switch disc {
	case DisciplineBackfill:
		for i, q := range queue {
			if q.need <= free {
				free -= q.need
				picks = append(picks, i)
			}
		}
	case DisciplineEASY:
		// Head-of-queue jobs start as under FCFS; started jobs join the
		// running view so the next head's shadow sees their departures.
		run := append([]rJob(nil), running...)
		i := 0
		for ; i < len(queue); i++ {
			q := queue[i]
			if q.need > free {
				break
			}
			free -= q.need
			end := int64(-1)
			if q.dur >= 0 {
				end = now + q.dur
			}
			run = append(run, rJob{need: q.need, end: end})
			picks = append(picks, i)
		}
		if i >= len(queue) {
			break
		}
		shadow, extra := shadowTime(queue[i].need, free, run)
		for k := i + 1; k < len(queue); k++ {
			q := queue[k]
			if q.need > free {
				continue
			}
			switch {
			case shadow < 0:
				// no reservation to protect
			case q.dur >= 0 && now+q.dur <= shadow:
				// returns its routers by the shadow time
			case q.need <= extra:
				extra -= q.need
			default:
				continue
			}
			free -= q.need
			picks = append(picks, k)
		}
	default: // DisciplineFCFS
		for i, q := range queue {
			if q.need > free {
				break
			}
			free -= q.need
			picks = append(picks, i)
		}
	}
	return picks
}

// shadowTime computes the head job's reservation: the earliest cycle S at
// which free routers plus the routers of running jobs departing by S reach
// need, and the spare count E beyond need available at S. It returns
// (-1, 0) when the known departures never accumulate to need (the head's
// start cannot be bounded). Only running jobs with known ends participate.
func shadowTime(need, free int, running []rJob) (shadow int64, extra int) {
	if need <= free {
		// The head fits now; callers only ask for blocked heads, but a
		// zero-length answer is well-defined and the oracle exercises it.
		return 0, free - need
	}
	known := make([]rJob, 0, len(running))
	for _, r := range running {
		if r.end >= 0 {
			known = append(known, r)
		}
	}
	sort.Slice(known, func(a, b int) bool { return known[a].end < known[b].end })
	acc := free
	for i, r := range known {
		acc += r.need
		if acc >= need {
			s := r.end
			// Spare at S counts every departure up to and including S, not
			// just the prefix that first covered the demand — jobs ending
			// at the same cycle all free their routers by then.
			for _, later := range known[i+1:] {
				if later.end != s {
					break
				}
				acc += later.need
			}
			return s, acc - need
		}
	}
	return -1, 0
}
