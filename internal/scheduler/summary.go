package scheduler

import "fmt"

// StreamSummary is the portable, deterministic condensation of a
// StreamResult: everything a utilization-vs-slowdown study needs per
// operating point, including the serialized quantile sketches (JSON
// renders the byte slices as base64), and nothing run-environment-bound —
// no wall clock, no memory telemetry — so two runs of the same point
// produce byte-identical summaries and checkpointed studies can be
// compared file-for-file across interrupts.
type StreamSummary struct {
	Discipline string `json:"discipline"`
	Alloc      string `json:"alloc"`
	Seed       uint64 `json:"seed"`

	Jobs          int   `json:"jobs"`
	Started       int   `json:"started"`
	Completed     int   `json:"completed"`
	LastDeparture int64 `json:"last_departure"`
	RanCycles     int64 `json:"ran_cycles"`

	Utilization  float64 `json:"utilization"`
	WaitMean     float64 `json:"wait_mean"`
	WaitP50      float64 `json:"wait_p50"`
	WaitP99      float64 `json:"wait_p99"`
	RunMean      float64 `json:"run_mean"`
	SlowdownMean float64 `json:"slowdown_mean"`
	SlowdownP50  float64 `json:"slowdown_p50"`
	SlowdownP99  float64 `json:"slowdown_p99"`

	PeakRunning int `json:"peak_running"`
	PeakQueue   int `json:"peak_queue"`

	// NetThroughput and PktLatMean are the network-side view of the same
	// run: accepted load in phits/(node·cycle) and mean packet latency in
	// cycles. Scheduling metrics above are placement-invariant for
	// cycle-duration jobs (durations are exogenous, and the count-based
	// resource model sees only node counts); these two are where the
	// allocation policy shows up.
	NetThroughput float64 `json:"net_throughput"`
	PktLatMean    float64 `json:"pkt_lat_mean"`

	// WaitSketch, RunSketch and SlowdownSketch are the stats.Sketch
	// serializations (see stats.Sketch.MarshalBinary) — mergeable across
	// seeds or shards without the per-job data.
	WaitSketch     []byte `json:"wait_sketch"`
	RunSketch      []byte `json:"run_sketch"`
	SlowdownSketch []byte `json:"slowdown_sketch"`
}

// Summary condenses the result for checkpointing and study output. alloc
// and seed identify the operating point (the StreamResult itself does not
// know which allocation policy or seed produced it).
func (r *StreamResult) Summary(alloc string, seed uint64) (StreamSummary, error) {
	s := StreamSummary{
		Discipline:    r.Discipline,
		Alloc:         alloc,
		Seed:          seed,
		Jobs:          r.Jobs,
		Started:       r.Started,
		Completed:     r.Completed,
		LastDeparture: r.LastDeparture,
		RanCycles:     r.RanCycles,
		Utilization:   r.Utilization,
		WaitMean:      r.WaitMean,
		WaitP50:       r.Wait.Quantile(0.50),
		WaitP99:       r.Wait.Quantile(0.99),
		RunMean:       r.RunMean,
		SlowdownMean:  r.SlowdownMean,
		SlowdownP50:   r.Slowdown.Quantile(0.50),
		SlowdownP99:   r.Slowdown.Quantile(0.99),
		PeakRunning:   r.PeakRunning,
		PeakQueue:     r.PeakQueue,
	}
	if r.Sim != nil {
		s.NetThroughput = r.Sim.Throughput()
		s.PktLatMean = r.Sim.AvgLatency()
	}
	var err error
	if s.WaitSketch, err = r.Wait.MarshalBinary(); err != nil {
		return s, fmt.Errorf("scheduler: wait sketch: %w", err)
	}
	if s.RunSketch, err = r.RunTime.MarshalBinary(); err != nil {
		return s, fmt.Errorf("scheduler: run sketch: %w", err)
	}
	if s.SlowdownSketch, err = r.Slowdown.MarshalBinary(); err != nil {
		return s, fmt.Errorf("scheduler: slowdown sketch: %w", err)
	}
	return s, nil
}
