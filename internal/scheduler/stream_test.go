package scheduler

import (
	"bytes"
	"encoding/json"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"

	"dragonfly/internal/sim"
	"dragonfly/internal/stats"
)

// genSpecSmall is the shared trace shape the streaming tests draw from: a
// ~67%-offered-load open system on the h=2 test machine (72 nodes), small
// enough that every discipline drains it in a few thousand cycles.
func genSpecSmall(jobs int) GenSpec {
	return GenSpec{
		Jobs:         jobs,
		InterArrival: 30,
		NodesMedian:  10,
		NodesSigma:   0.7,
		MaxNodes:     72,
		DurMedian:    300,
		DurSigma:     0.7,
		Load:         0.3,
	}
}

// Same spec and seed must yield a byte-identical trace — repeatedly, and
// from concurrent goroutines (the generator is a pure function; worker
// count and call interleaving cannot touch it). A different seed must not.
func TestGenerateDeterminism(t *testing.T) {
	spec := genSpecSmall(2000)
	ref, err := Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	got := make([][]byte, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gt, err := Generate(spec, 42)
			if err != nil {
				return // left nil; caught below
			}
			got[g], _ = json.Marshal(gt)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if !bytes.Equal(got[g], refJSON) {
			t.Fatalf("goroutine %d: trace differs from the serial reference", g)
		}
	}
	other, err := Generate(spec, 43)
	if err != nil {
		t.Fatal(err)
	}
	otherJSON, _ := json.Marshal(other)
	if bytes.Equal(otherJSON, refJSON) {
		t.Fatal("seeds 42 and 43 generated identical traces")
	}
}

// A 100k-job draw must track the spec's distribution parameters: mean
// inter-arrival within 2%, median size within 10%, median duration within
// 5%, arrivals nondecreasing, every job inside its clamps.
func TestGenerateDistribution(t *testing.T) {
	spec := GenSpec{
		Jobs:         100_000,
		InterArrival: 20,
		NodesMedian:  8,
		NodesSigma:   0.6,
		MaxNodes:     72,
		DurMedian:    200,
		DurSigma:     0.8,
	}
	gt, err := Generate(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < gt.Len(); i++ {
		if i > 0 && gt.Arrival[i] < gt.Arrival[i-1] {
			t.Fatalf("job %d arrives at %d, before job %d at %d", i, gt.Arrival[i], i-1, gt.Arrival[i-1])
		}
		if n := gt.Nodes[i]; n < 2 || n > int32(spec.MaxNodes) {
			t.Fatalf("job %d: %d nodes outside [2, %d]", i, n, spec.MaxNodes)
		}
		if gt.Duration[i] < 1 {
			t.Fatalf("job %d: duration %d < 1", i, gt.Duration[i])
		}
	}
	meanIA := float64(gt.Arrival[gt.Len()-1]) / float64(gt.Len())
	if meanIA < spec.InterArrival*0.98 || meanIA > spec.InterArrival*1.02 {
		t.Errorf("mean inter-arrival %v, want %v ±2%%", meanIA, spec.InterArrival)
	}
	nodes := append([]int32(nil), gt.Nodes...)
	sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
	if med := float64(nodes[len(nodes)/2]); med < spec.NodesMedian*0.9 || med > spec.NodesMedian*1.1 {
		t.Errorf("median nodes %v, want %v ±10%%", med, spec.NodesMedian)
	}
	durs := append([]int64(nil), gt.Duration...)
	sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
	if med := float64(durs[len(durs)/2]); med < spec.DurMedian*0.95 || med > spec.DurMedian*1.05 {
		t.Errorf("median duration %v, want %v ±5%%", med, spec.DurMedian)
	}
}

// lifecycles drives RunGenerated with hooks installed and returns each
// trace job's start and completion cycles plus the run's StreamResult.
func lifecycles(t *testing.T, cfg sim.Config, gt *GenTrace, disc string) (starts, comps []int64, res *StreamResult) {
	t.Helper()
	starts = make([]int64, gt.Len())
	comps = make([]int64, gt.Len())
	for i := range starts {
		starts[i], comps[i] = -1, -1
	}
	streamTestHook = func(c *genController) {
		c.onPlace = func(idx int, now int64) { starts[idx] = now }
		c.onComplete = func(idx int, now int64) { comps[idx] = now }
	}
	defer func() { streamTestHook = nil }()
	res, err := RunGenerated(cfg, gt, disc)
	if err != nil {
		t.Fatalf("RunGenerated(%s): %v", disc, err)
	}
	return starts, comps, res
}

// The streaming core and the detailed replay controller must agree job for
// job — same start cycle, same completion cycle — on any trace both can
// run, for every discipline. They share planStarts, so a disagreement means
// the surrounding event plumbing (arrival batching, departure order,
// queue compaction) has diverged.
func TestStreamMatchesDetailed(t *testing.T) {
	jobs := 150
	if testing.Short() {
		jobs = 60
	}
	gt, err := Generate(genSpecSmall(jobs), 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, disc := range KnownDisciplines() {
		cfg := schedCfg()
		cfg.MeasureCycles = 1 << 20 // cap only: the Finisher ends the run
		starts, comps, res := lifecycles(t, cfg, gt, disc)
		if res.Completed != gt.Len() {
			t.Fatalf("%s: streaming run completed %d/%d jobs", disc, res.Completed, gt.Len())
		}

		cfg2 := schedCfg()
		cfg2.MeasureCycles = res.LastDeparture + 100 // full horizon: no censoring
		det, err := Run(cfg2, gt.Trace(disc))
		if err != nil {
			t.Fatalf("Run(%s): %v", disc, err)
		}
		if det.Completed != gt.Len() {
			t.Fatalf("%s: detailed run completed %d/%d jobs", disc, det.Completed, gt.Len())
		}
		for i := range det.Jobs {
			if det.Jobs[i].Start != starts[i] || det.Jobs[i].Completion != comps[i] {
				t.Fatalf("%s job %d: detailed (start %d, completion %d) vs streaming (start %d, completion %d)",
					disc, i, det.Jobs[i].Start, det.Jobs[i].Completion, starts[i], comps[i])
			}
		}
	}
}

// One generated trace must produce a bit-identical StreamResult — scalars,
// network measurement and serialized sketch bytes — on the scheduler and
// dense reference engines at Workers 1, 2 and NumCPU.
func TestStreamEngineIdentity(t *testing.T) {
	gt, err := Generate(genSpecSmall(60), 3)
	if err != nil {
		t.Fatal(err)
	}
	var want *StreamResult
	var wantSketches [][]byte
	for _, ec := range engineMatrix() {
		cfg := schedCfg()
		cfg.Workers = ec.workers
		cfg.MeasureCycles = 1 << 20
		res, err := runGenerated(cfg, gt, DisciplineEASY, StreamOptions{}, ec.drive)
		if err != nil {
			t.Fatalf("%s: %v", ec.name, err)
		}
		normalizeSim(res.Sim)
		sketches := make([][]byte, 0, 3)
		for _, sk := range []*stats.Sketch{&res.Wait, &res.RunTime, &res.Slowdown} {
			b, err := sk.MarshalBinary()
			if err != nil {
				t.Fatalf("%s: marshal sketch: %v", ec.name, err)
			}
			sketches = append(sketches, b)
		}
		if want == nil {
			want, wantSketches = res, sketches
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("%s: StreamResult differs from %s", ec.name, engineMatrix()[0].name)
		}
		for i := range sketches {
			if !bytes.Equal(sketches[i], wantSketches[i]) {
				t.Fatalf("%s: sketch %d bytes differ from %s", ec.name, i, engineMatrix()[0].name)
			}
		}
	}
}

// liveHeap reports the live heap after a settling GC.
func liveHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// retainedAtDrain runs a generated trace and measures the live heap at the
// last departure — the moment the whole run (trace, controller, workload,
// network, accumulators) is still reachable.
func retainedAtDrain(t *testing.T, jobs int, seed uint64) uint64 {
	t.Helper()
	spec := GenSpec{
		Jobs:         jobs,
		InterArrival: 3,
		NodesMedian:  8,
		NodesSigma:   0.5,
		MaxNodes:     72,
		DurMedian:    15,
		DurSigma:     0.5,
	}
	gt, err := Generate(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	var live uint64
	streamTestHook = func(c *genController) {
		c.onComplete = func(idx int, now int64) {
			if c.completed == c.gt.Len() {
				live = liveHeap()
			}
		}
	}
	defer func() { streamTestHook = nil }()
	cfg := schedCfg()
	cfg.MeasureCycles = 1 << 22
	res, err := RunGenerated(cfg, gt, DisciplineEASY)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != jobs {
		t.Fatalf("completed %d/%d jobs", res.Completed, jobs)
	}
	if live == 0 {
		t.Fatal("memory probe never fired")
	}
	return live
}

// The memory-flatness regression: retained state at end of run must not
// scale with trace length beyond the trace's own ~20 B/job structure-of-
// arrays footprint plus the workload's per-admission slot. A long trace and
// a short one therefore differ by a small constant per job — if someone
// reintroduces a per-job result slice, per-job names, or O(jobs) network
// attribution, the per-job delta jumps by an order of magnitude and this
// test fails.
func TestStreamMemoryFlat(t *testing.T) {
	small, large := 1_000, 50_000
	if testing.Short() {
		small, large = 500, 5_000
	}
	liveSmall := retainedAtDrain(t, small, 5)
	liveLarge := retainedAtDrain(t, large, 5)
	perJob := (float64(liveLarge) - float64(liveSmall)) / float64(large-small)
	t.Logf("live heap at drain: %d jobs → %d B, %d jobs → %d B (%.1f B/job marginal)",
		small, liveSmall, large, liveLarge, perJob)
	const budget = 96 // ~20 B/job trace + 8 B/job workload slot + slack
	if perJob > budget {
		t.Fatalf("retained memory grows %.1f B/job, budget %d B/job — per-job state is being retained", perJob, budget)
	}
}
